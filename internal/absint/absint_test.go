package absint

import (
	"strings"
	"testing"

	"retypd/internal/asm"
	"retypd/internal/cfg"
	"retypd/internal/constraints"
	"retypd/internal/lattice"
	"retypd/internal/summaries"
)

func generate(t *testing.T, src string, opts Options) map[string]*Result {
	t.Helper()
	prog, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	infos := cfg.AnalyzeProgram(prog)
	lat := lattice.Default()
	isConst := func(v constraints.Var) bool {
		_, ok := lat.Elem(string(v))
		return ok
	}
	out := map[string]*Result{}
	for _, p := range prog.Procs {
		out[p.Name] = Generate(infos[p.Name], infos, nil, summaries.Default(), isConst, opts)
	}
	return out
}

func hasConstraintLike(r *Result, substr string) bool {
	return strings.Contains(r.Constraints.String(), substr)
}

// TestLoadStoreConstraints: loads and stores produce .load.σN@k /
// .store.σN@k constraints with the access width (§A.3).
func TestLoadStoreConstraints(t *testing.T) {
	rs := generate(t, `
proc f
    mov ecx, [esp+4]
    mov eax, [ecx+8]
    movb edx, [ecx+1]
    mov [ecx+12], eax
    ret
endproc
`, Options{})
	r := rs["f"]
	for _, want := range []string{
		".load.σ32@8", ".load.σ8@1", ".store.σ32@12",
		"f.in_stack0 <=",
	} {
		if !hasConstraintLike(r, want) {
			t.Errorf("missing %q in:\n%s", want, r.Constraints)
		}
	}
}

// TestSemiSyntacticConstants (§2.1): xor eax,eax then two pushes as
// NULL arguments must not produce any constraint tying the two
// parameters together.
func TestSemiSyntacticConstants(t *testing.T) {
	src := `
proc callee
    mov eax, [esp+4]
    mov ecx, [esp+8]
    mov edx, [ecx]
    ret
endproc
proc caller
    xor eax, eax
    push eax
    push eax
    call callee
    add esp, 8
    ret
endproc
`
	rs := generate(t, src, Options{})
	r := rs["caller"]
	// No constraint should mention callee's inputs at all: the zero
	// actuals are suppressed.
	if strings.Contains(r.Constraints.String(), "in_stack0") ||
		strings.Contains(r.Constraints.String(), "in_stack4") {
		t.Errorf("zero arguments leaked constraints:\n%s", r.Constraints)
	}
	// With suppression disabled (ablation), the zero flows through the
	// shared pseudo variable — the §2.1 hazard made visible.
	rs = generate(t, src, Options{NoConstantSuppression: true})
	r = rs["caller"]
	if !strings.Contains(r.Constraints.String(), "!zero") {
		t.Errorf("ablation should route zeros through the pseudo var:\n%s", r.Constraints)
	}
}

// TestFlagOnlyOps (§A.5.2): test/cmp generate nothing.
func TestFlagOnlyOps(t *testing.T) {
	rs := generate(t, `
proc f
    mov eax, [esp+4]
    test eax, eax
    cmp eax, 4
    ret
endproc
`, Options{})
	text := rs["f"].Constraints.String()
	if strings.Contains(text, "int") {
		t.Errorf("flag-only ops should not type operands:\n%s", text)
	}
}

// TestBitStealing (§A.5.2): and r,-4 / or r,1 act as value copies.
func TestBitStealing(t *testing.T) {
	rs := generate(t, `
proc f
    mov ecx, [esp+4]
    and ecx, -4
    mov eax, [ecx]
    ret
endproc
`, Options{})
	// The load must still be attributed to the parameter (through the
	// alias), so f.in_stack0's class must reach a .load.
	text := rs["f"].Constraints.String()
	if !strings.Contains(text, ".load.σ32@0") {
		t.Errorf("bit-stealing mask broke the pointer flow:\n%s", text)
	}
	if strings.Contains(text, "<= int") {
		t.Errorf("mask must not force an integer type:\n%s", text)
	}
}

// TestAdditiveConstraints: reg+reg emits Add (§A.6).
func TestAdditiveConstraints(t *testing.T) {
	rs := generate(t, `
proc f
    mov eax, [esp+4]
    mov ecx, [esp+8]
    add eax, ecx
    sub eax, ecx
    ret
endproc
`, Options{})
	text := rs["f"].Constraints.String()
	if !strings.Contains(text, "Add(") || !strings.Contains(text, "Sub(") {
		t.Errorf("missing additive constraints:\n%s", text)
	}
}

// TestPointerOffsetTracking (§A.2): add reg, imm keeps the base type
// variable, folding the offset into the field access.
func TestPointerOffsetTracking(t *testing.T) {
	rs := generate(t, `
proc f
    mov ecx, [esp+4]
    add ecx, 8
    mov eax, [ecx+4]
    ret
endproc
`, Options{})
	text := rs["f"].Constraints.String()
	if !strings.Contains(text, ".load.σ32@12") {
		t.Errorf("offset translation lost (want σ32@12):\n%s", text)
	}
}

// TestCallsiteTags: two calls to malloc get distinct instances
// (let-polymorphism, Example A.4); monomorphic mode shares them.
func TestCallsiteTags(t *testing.T) {
	src := `
proc f
    push 8
    call malloc
    add esp, 4
    push 16
    call malloc
    add esp, 4
    ret
endproc
`
	rs := generate(t, src, Options{})
	var roots []string
	for _, c := range rs["f"].Calls {
		roots = append(roots, string(c.Root))
	}
	if len(roots) != 2 || roots[0] == roots[1] {
		t.Errorf("malloc callsites should be distinct: %v", roots)
	}
	rs = generate(t, src, Options{MonomorphicCalls: true})
	roots = roots[:0]
	for _, c := range rs["f"].Calls {
		roots = append(roots, string(c.Root))
	}
	if roots[0] != roots[1] {
		t.Errorf("monomorphic mode should share the instance: %v", roots)
	}
}

// TestRegionVariables (§A.3): address-taken locals get a region
// variable whose loads/stores model the frame struct.
func TestRegionVariables(t *testing.T) {
	rs := generate(t, `
proc f
    sub esp, 8
    mov eax, [esp+12]
    mov [esp], eax
    lea ecx, [esp]
    push ecx
    call g
    add esp, 4
    add esp, 8
    ret
endproc
proc g
    mov ecx, [esp+4]
    mov eax, [ecx]
    ret
endproc
`, Options{})
	text := rs["f"].Constraints.String()
	if !strings.Contains(text, "rgn") {
		t.Errorf("no region variable for the address-taken frame slot:\n%s", text)
	}
	if !strings.Contains(text, ".store.σ32@0") {
		t.Errorf("direct writes should route through the region store:\n%s", text)
	}
}

// TestCoverage: uncovered instructions generate nothing (the REWARDS
// baseline's restriction).
func TestCoverage(t *testing.T) {
	rs := generate(t, `
proc f
    mov ecx, [esp+4]
    mov eax, [ecx+4]
    ret
endproc
`, Options{Covered: func(proc string, idx int) bool { return false }})
	if got := len(rs["f"].Constraints.Subtypes()); got > 1 {
		// Only the formal binding may remain.
		t.Errorf("uncovered body generated %d constraints:\n%s", got, rs["f"].Constraints)
	}
}
