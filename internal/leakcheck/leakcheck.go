// Package leakcheck asserts that a test leaves no goroutines behind.
// The engine's crash-safety contract says a cancelled or faulted run
// drains its worker pool completely; these helpers turn that into a
// checkable property for the conc, solver, and faultinject suites.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// scaffolding reports whether a goroutine stack belongs to the
// runtime/testing machinery that legitimately persists across tests.
func scaffolding(stack string) bool {
	for _, benign := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.runFuzzing",
		"testing.tRunner",
		"runtime.goexit",
		"created by runtime",
		"signal.signal_recv",
		"runtime/pprof",
		"leakcheck.Snapshot",
	} {
		if strings.Contains(stack, benign) {
			return true
		}
	}
	return false
}

// suspects returns the stacks of currently-live goroutines that are not
// recognized scaffolding.
func suspects() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if g == "" || scaffolding(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// Snapshot records the current goroutine count. Take one before the
// code under test runs and Check against it afterwards.
type Snapshot struct{ n int }

// Take returns the current baseline.
func Take() Snapshot { return Snapshot{n: runtime.NumGoroutine()} }

// Check asserts the goroutine count has returned to (at most) the
// baseline, retrying for a bounded window first: pool workers observe
// quiescence and exit after the submitting side returns, so a small
// settle delay is expected and not a leak. On failure it returns an
// error listing the non-scaffolding goroutines still alive.
func (s Snapshot) Check() error {
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= s.n {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	live := suspects()
	return fmt.Errorf("goroutine leak: %d live, baseline %d; non-scaffolding stacks:\n%s",
		runtime.NumGoroutine(), s.n, strings.Join(live, "\n\n"))
}

// TB is the subset of testing.TB the helper needs (avoids importing
// testing into non-test binaries that link this package).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// Install takes a baseline now and registers a cleanup that fails the
// test if the count has not settled back by test end.
func Install(t TB) {
	t.Helper()
	s := Take()
	t.Cleanup(func() {
		if err := s.Check(); err != nil {
			t.Errorf("%v", err)
		}
	})
}
