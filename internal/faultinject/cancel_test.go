package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"retypd/internal/asm"
	"retypd/internal/conc"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
	"retypd/internal/leakcheck"
	"retypd/internal/solver"
)

// TestPreCancelledReturnsPromptly: an already-cancelled context is
// rejected before any scheduler work — no worker goroutines spawn, no
// task runs, and the call returns essentially immediately.
func TestPreCancelledReturnsPromptly(t *testing.T) {
	leakcheck.Install(t)
	lat := lattice.Default()
	prog := sweepProg(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// A BeforeTask hook that records any invocation: pre-cancelled runs
	// must never reach a task boundary.
	ran := false
	opts := solver.DefaultOptions()
	opts.Workers = 8
	opts.SchedHooks = &conc.SchedHooks{BeforeTask: func(string, string) { ran = true }}

	start := time.Now()
	eng := solver.NewEngine(0, 0)
	res, err := eng.InferContext(ctx, prog, lat, nil, opts)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("pre-cancelled run returned a result")
	}
	if ran {
		t.Fatal("pre-cancelled run executed a task")
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("pre-cancelled run took %v, want prompt return", elapsed)
	}
}

// TestMidRunCancelLatency: cancelling partway through a 4000-inst
// analysis returns well under the full analysis time. The fault plan
// cancels at an early F.2 task, so most of the pipeline's work is still
// outstanding when the cancel lands.
func TestMidRunCancelLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	leakcheck.Install(t)
	lat := lattice.Default()
	prog, err := asm.Parse(corpus.Generate("cancellat", 13, 4000).Source)
	if err != nil {
		t.Fatal(err)
	}

	// Full-analysis baseline on a cold engine (median of 3 to damp noise).
	full := medianRunTime(t, 3, func() {
		eng := solver.NewEngine(0, 0)
		if _, err := eng.InferContext(context.Background(), prog, lat, nil, solver.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan := &Plan{Phase: "F.2", N: 0, Kind: Cancel, Cancel: cancel}
	opts := solver.DefaultOptions()
	opts.SchedHooks = plan.Hooks()

	eng := solver.NewEngine(0, 0)
	start := time.Now()
	_, err = eng.InferContext(ctx, prog, lat, nil, opts)
	elapsed := time.Since(start)

	if !plan.Fired() {
		t.Fatal("cancel plan never fired")
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled or clean finish", err)
	}
	// "Well under one full analysis": allow 75% headroom for scheduler
	// drain and in-flight tasks finishing.
	if limit := full * 3 / 4; elapsed >= limit {
		t.Errorf("mid-run cancel took %v, want < %v (full analysis %v)", elapsed, limit, full)
	}

	// The engine stays usable after the abandoned run.
	if _, err := eng.InferContext(context.Background(), prog, lat, nil, solver.DefaultOptions()); err != nil {
		t.Fatalf("engine unusable after cancelled run: %v", err)
	}
}

// medianRunTime times f n times and returns the median.
func medianRunTime(t *testing.T, n int, f func()) time.Duration {
	t.Helper()
	times := make([]time.Duration, n)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[n/2]
}

// TestAdmissionGuards: oversize programs are rejected with a typed
// *solver.LimitError before any analysis work begins.
func TestAdmissionGuards(t *testing.T) {
	leakcheck.Install(t)
	lat := lattice.Default()
	prog := sweepProg(t)
	eng := solver.NewEngine(0, 0)

	opts := solver.DefaultOptions()
	opts.MaxInstructions = 10
	_, err := eng.InferContext(context.Background(), prog, lat, nil, opts)
	var le *solver.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v (%T), want *solver.LimitError", err, err)
	}
	if le.What != "instructions" || le.Limit != 10 {
		t.Errorf("LimitError = %+v, want instructions/10", le)
	}

	opts = solver.DefaultOptions()
	opts.MaxProcedures = 1
	_, err = eng.InferContext(context.Background(), prog, lat, nil, opts)
	if !errors.As(err, &le) {
		t.Fatalf("err = %v (%T), want *solver.LimitError", err, err)
	}
	if le.What != "procedures" || le.Limit != 1 {
		t.Errorf("LimitError = %+v, want procedures/1", le)
	}

	// Rejection publishes nothing and the engine still works.
	res, err := eng.InferContext(context.Background(), prog, lat, nil, solver.DefaultOptions())
	if err != nil {
		t.Fatalf("engine unusable after admission rejection: %v", err)
	}
	if res == nil {
		t.Fatal("nil result from clean run")
	}
}
