// Package faultinject is a seeded fault-injection harness for the
// solver pipeline. It rides the solver's SchedHooks seam: the pipeline
// invokes SchedHooks.BeforeTask inside its per-task panic containment,
// so a fault injected here surfaces exactly as a real task crash would
// — as a structured *solver.AnalysisError naming the phase and task —
// which is what lets one harness sweep every phase × fault kind ×
// worker count and assert the engine's crash-safety contract from the
// outside: the engine survives, publishes nothing, and its next clean
// run is byte-identical to a never-faulted engine's.
//
// Plans are deterministic: the Nth task of a given phase faults, where
// tasks are counted in BeforeTask invocation order. Under a concurrent
// schedule which task is "Nth" varies run to run — that is the point;
// the contract must hold for whichever task the fault lands on.
package faultinject

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"retypd/internal/conc"
)

// ErrInjected is the sentinel the harness panics with. It unwraps
// through conc.WorkerPanic and solver.AnalysisError, so suites assert
// errors.Is(err, faultinject.ErrInjected) to distinguish injected
// faults from real bugs.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind selects what happens when the plan's trigger point is reached.
type Kind int

const (
	// Panic panics with ErrInjected inside the task's containment.
	Panic Kind = iota
	// Cancel calls the plan's Cancel function (typically the run
	// context's CancelFunc), then lets the task proceed — modeling a
	// caller abandoning the run mid-flight.
	Cancel
	// Stall sleeps Delay inside the task, modeling a straggler; paired
	// with a context deadline it turns into a deterministic
	// deadline-mid-phase fault.
	Stall
)

// Plan triggers one fault at the Nth task (0-based) of a given phase.
type Plan struct {
	Phase string // "F.0", "F.1", "F.2", "F.3"
	N     int    // fire on the N-th BeforeTask of Phase
	Kind  Kind
	// Cancel is invoked by Kind Cancel (required then, unused otherwise).
	Cancel context.CancelFunc
	// Delay is how long Kind Stall sleeps (default 50ms).
	Delay time.Duration

	hits atomic.Int64
	done atomic.Bool
}

// Fired reports whether the fault triggered (false means the sweep's
// coordinates never materialized — e.g. phase F.0 with dedup disabled —
// and the run was effectively clean).
func (p *Plan) Fired() bool { return p.done.Load() }

// Hooks returns the SchedHooks carrying the plan, for
// solver.Options.SchedHooks. The returned hooks only set BeforeTask;
// they compose with nothing — fault runs never need schedule
// perturbation on top, determinism of the recovery is asserted against
// clean reference runs instead.
func (p *Plan) Hooks() *conc.SchedHooks {
	return &conc.SchedHooks{BeforeTask: func(phase, name string) {
		if phase != p.Phase {
			return
		}
		if p.hits.Add(1)-1 != int64(p.N) {
			return
		}
		p.done.Store(true)
		switch p.Kind {
		case Panic:
			panic(ErrInjected)
		case Cancel:
			p.Cancel()
		case Stall:
			d := p.Delay
			if d == 0 {
				d = 50 * time.Millisecond
			}
			time.Sleep(d)
		}
	}}
}

// CorruptCopy returns a copy of data with one deterministic, seeded
// byte flip (empty input is returned as-is). Cache-decode fault tests
// feed the result to LoadCacheData and assert a clean typed failure.
func CorruptCopy(data []byte, seed int64) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	// splitmix64 step: cheap, deterministic, well-mixed position/mask.
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	pos := int(z % uint64(len(out)))
	mask := byte(z>>8) | 1 // never zero: the flip must change the byte
	out[pos] ^= mask
	return out
}
