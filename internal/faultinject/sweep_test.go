package faultinject

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"retypd/internal/asm"
	"retypd/internal/corpus"
	"retypd/internal/lattice"
	"retypd/internal/leakcheck"
	"retypd/internal/solver"
)

// sweepProg is the program every fault run analyzes: large enough that
// each phase has many tasks (so the Nth-task trigger lands mid-phase)
// and generated, so it contains the duplicate leaf procedures that give
// F.0 real classification work.
func sweepProg(t testing.TB) *asm.Program {
	t.Helper()
	prog, err := asm.Parse(corpus.Generate("faultsweep", 7, 900).Source)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// dumps renders the run's full observable output.
func dumps(res *solver.Result) string {
	return res.DumpSchemes() + "\x00" + res.DumpSpecialized()
}

// reference computes the never-faulted engine's output for prog.
func reference(t testing.TB, prog *asm.Program, lat *lattice.Lattice) string {
	t.Helper()
	eng := solver.NewEngine(0, 0)
	res, err := eng.InferContext(context.Background(), prog, lat, nil, solver.DefaultOptions())
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	return dumps(res)
}

// TestFaultSweep drives the tentpole contract: for every pipeline phase
// × fault kind × worker count, a fault mid-run leaves the engine alive,
// publishes nothing, and the same engine's next clean run is
// byte-identical to a never-faulted engine's; its persisted cache still
// loads; and the goroutine count settles back to baseline.
func TestFaultSweep(t *testing.T) {
	lat := lattice.Default()
	prog := sweepProg(t)
	want := reference(t, prog, lat)

	phases := []string{"F.0", "F.1", "F.2", "F.3"}
	kinds := []struct {
		name string
		kind Kind
	}{{"panic", Panic}, {"cancel", Cancel}, {"stall", Stall}}

	for _, phase := range phases {
		for _, k := range kinds {
			for _, workers := range []int{1, 2, 4, 8} {
				name := phase + "/" + k.name + "/w" + string(rune('0'+workers))
				t.Run(name, func(t *testing.T) {
					leakcheck.Install(t)
					eng := solver.NewEngine(0, 0)

					plan := &Plan{Phase: phase, N: 1, Kind: k.kind, Delay: 150 * time.Millisecond}
					ctx := context.Background()
					var cancel context.CancelFunc
					switch k.kind {
					case Cancel:
						ctx, cancel = context.WithCancel(ctx)
						plan.Cancel = cancel
					case Stall:
						// The stalled task sleeps far past the deadline, so
						// the deadline reliably expires mid-phase.
						ctx, cancel = context.WithTimeout(ctx, 30*time.Millisecond)
					}
					if cancel != nil {
						defer cancel()
					}

					opts := solver.DefaultOptions()
					opts.Workers = workers
					opts.SchedHooks = plan.Hooks()
					res, err := eng.InferContext(ctx, prog, lat, nil, opts)

					if !plan.Fired() {
						// The trigger coordinates never materialized. For
						// Stall the context deadline is armed regardless, so
						// a slow run (e.g. under -race) may still deadline
						// out before reaching the trigger; anything else must
						// have been a clean success.
						if k.kind == Stall && errors.Is(err, context.DeadlineExceeded) {
							// acceptable: recovery assertions below still apply
						} else if err != nil {
							t.Fatalf("fault never fired but run errored: %v", err)
						} else if dumps(res) != want {
							t.Fatal("clean run (unfired fault) output differs from reference")
						}
					} else {
						switch k.kind {
						case Panic:
							var ae *solver.AnalysisError
							if !errors.As(err, &ae) {
								t.Fatalf("err = %v (%T), want *solver.AnalysisError", err, err)
							}
							if ae.Phase != phase {
								t.Errorf("AnalysisError.Phase = %q, want %q", ae.Phase, phase)
							}
							if !errors.Is(err, ErrInjected) {
								t.Errorf("AnalysisError does not unwrap to ErrInjected: %v", err)
							}
						case Cancel:
							// Cooperative cancellation: the run either aborts
							// with Canceled or — if it was already past the
							// last boundary — completes with correct output.
							if err != nil && !errors.Is(err, context.Canceled) {
								t.Fatalf("err = %v, want context.Canceled or clean finish", err)
							}
							if err == nil && dumps(res) != want {
								t.Fatal("run that outran the cancel produced wrong output")
							}
						case Stall:
							if err != nil && !errors.Is(err, context.DeadlineExceeded) {
								t.Fatalf("err = %v, want context.DeadlineExceeded or clean finish", err)
							}
							if err == nil && dumps(res) != want {
								t.Fatal("run that outran the deadline produced wrong output")
							}
						}
						if err != nil && res != nil {
							t.Fatal("errored run returned a non-nil result")
						}
					}

					// Crash-safety contract: the same engine's next clean run
					// is byte-identical to a never-faulted engine's.
					clean, cerr := eng.InferContext(context.Background(), prog, lat, nil, solver.DefaultOptions())
					if cerr != nil {
						t.Fatalf("engine unusable after fault: %v", cerr)
					}
					if dumps(clean) != want {
						t.Fatal("post-fault recovery output differs from never-faulted reference")
					}

					// The cache stack persisted after the fault still loads.
					var buf bytes.Buffer
					if err := eng.SaveCacheTo(&buf); err != nil {
						t.Fatalf("SaveCacheTo after fault: %v", err)
					}
					eng2 := solver.NewEngine(0, 0)
					if _, err := eng2.LoadCacheData(buf.Bytes()); err != nil {
						t.Fatalf("cache written after fault does not load: %v", err)
					}
				})
			}
		}
	}
}

// TestReanalyzeAfterFault: a fault during Reanalyze leaves the previous
// session current, and the next Reanalyze on the same engine matches a
// from-scratch run byte for byte.
func TestReanalyzeAfterFault(t *testing.T) {
	leakcheck.Install(t)
	lat := lattice.Default()
	prog := sweepProg(t)
	want := reference(t, prog, lat)

	eng := solver.NewEngine(0, 0)
	if _, err := eng.InferContext(context.Background(), prog, lat, nil, solver.DefaultOptions()); err != nil {
		t.Fatal(err)
	}

	plan := &Plan{Phase: "F.2", N: 0, Kind: Panic}
	opts := solver.DefaultOptions()
	opts.SchedHooks = plan.Hooks()
	if _, err := eng.ReanalyzeContext(context.Background(), prog, lat, nil, opts); err == nil {
		t.Fatal("injected panic did not surface from ReanalyzeContext")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}

	res, err := eng.ReanalyzeContext(context.Background(), prog, lat, nil, solver.DefaultOptions())
	if err != nil {
		t.Fatalf("engine unusable after faulted Reanalyze: %v", err)
	}
	if dumps(res) != want {
		t.Fatal("post-fault Reanalyze differs from reference")
	}
	if res.ReplayedProcs == 0 {
		t.Error("post-fault Reanalyze replayed nothing: faulted run clobbered the session")
	}
}

// TestCacheDecodeFault: a corrupted cache file fails to load with a
// clean error and the engine that refused it stays fully usable.
func TestCacheDecodeFault(t *testing.T) {
	leakcheck.Install(t)
	lat := lattice.Default()
	prog := sweepProg(t)
	want := reference(t, prog, lat)

	eng := solver.NewEngine(0, 0)
	if _, err := eng.InferContext(context.Background(), prog, lat, nil, solver.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveCacheTo(&buf); err != nil {
		t.Fatal(err)
	}

	for seed := int64(0); seed < 8; seed++ {
		bad := CorruptCopy(buf.Bytes(), seed)
		if bytes.Equal(bad, buf.Bytes()) {
			t.Fatalf("seed %d: CorruptCopy changed nothing", seed)
		}
		fresh := solver.NewEngine(0, 0)
		if _, err := fresh.LoadCacheData(bad); err == nil {
			t.Fatalf("seed %d: corrupted cache loaded without error", seed)
		}
		res, err := fresh.InferContext(context.Background(), prog, lat, nil, solver.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: engine unusable after refused cache: %v", seed, err)
		}
		if dumps(res) != want {
			t.Fatalf("seed %d: output differs after refused cache load", seed)
		}
	}
}

// TestCorruptCopyDeterministic: the same seed flips the same byte.
func TestCorruptCopyDeterministic(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	a := CorruptCopy(data, 42)
	b := CorruptCopy(data, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruptions")
	}
	if bytes.Equal(a, CorruptCopy(data, 43)) {
		t.Fatal("different seeds produced identical corruptions (suspicious)")
	}
}
