// Package fuzzcorpus writes seed-corpus files in the `go test fuzz v1`
// encoding. The repo's native fuzz targets (FuzzDecodeWordWire,
// FuzzDecodeSketchWire, FuzzLoadCache) check their seed corpora into
// testdata/fuzz so that plain `go test` replays them as regression
// inputs; each target's package has an env-guarded test that calls
// Write to regenerate the files when an encoding changes.
package fuzzcorpus

import (
	"fmt"
	"os"
	"path/filepath"
)

// Write replaces dir's contents with one `go test fuzz v1` file per
// seed, named seed-NN. dir is created if missing.
func Write(dir string, seeds [][]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
	if err != nil {
		return err
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	for i, seed := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", string(seed))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}
