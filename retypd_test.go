package retypd

import (
	"strings"
	"testing"
)

const closeLastAsm = `
proc close_last
    push ebp
    mov ebp, esp
    sub esp, 8
    mov edx, [ebp+8]
    jmp L2
L1:
    mov edx, eax
L2:
    mov eax, [edx]
    test eax, eax
    jnz L1
    mov eax, [edx+4]
    mov [ebp+8], eax
    leave
    jmp close
endproc
`

// TestFigure2Signature checks the displayed C types of Figure 2:
//
//	typedef struct { Struct_0 *field_0; int field_4; } Struct_0;
//	int close_last(const Struct_0 *);
func TestFigure2Signature(t *testing.T) {
	res := Infer(MustParseAsm(closeLastAsm), nil)
	sig := res.Signature("close_last")
	if sig == nil {
		t.Fatal("no signature for close_last")
	}
	s := sig.String()
	t.Logf("signature: %s", s)
	t.Logf("report:\n%s", res.Report())

	if len(sig.Params) != 1 {
		t.Fatalf("want 1 parameter, got %d (%s)", len(sig.Params), s)
	}
	p := sig.Params[0]
	if !p.Type.Const {
		t.Errorf("parameter should be const (Example 4.1): %s", s)
	}
	if p.Type.Kind != 1 /* KPtr */ {
		t.Errorf("parameter should be a pointer: %s", s)
	}
	if !strings.Contains(strings.ToLower(sig.Ret.String()), "int") {
		t.Errorf("return should display int, got %s", sig.Ret)
	}
	if !strings.Contains(sig.Ret.String(), "#SuccessZ") {
		t.Errorf("return should carry the #SuccessZ tag, got %s", sig.Ret)
	}
	// The recursive struct must have been rerolled into a named
	// typedef whose field_0 points back to itself.
	if len(res.Typedefs()) == 0 {
		t.Fatalf("expected a recursive struct typedef, got none; sig=%s", s)
	}
	st := res.Typedefs()[0]
	if len(st.Fields) != 2 || st.Fields[0].Off != 0 || st.Fields[1].Off != 4 {
		t.Errorf("struct shape wrong: %s", st)
	}
	if !res.IsConstParam("close_last", 0) {
		t.Error("IsConstParam should report the parameter const")
	}
}

// TestSharedShapeCachePublicAPI: the public Config.ShapeCache knob —
// a cache shared across Infer calls serves the second call from memo
// without changing any displayed output, and NoShapeCache really
// disables it.
func TestSharedShapeCachePublicAPI(t *testing.T) {
	prog := MustParseAsm(closeLastAsm)
	cache := NewShapeCache(0)

	baseline := Infer(prog, &Config{NoShapeCache: true, NoSchemeCache: true})
	r1 := Infer(prog, &Config{ShapeCache: cache})
	r2 := Infer(prog, &Config{ShapeCache: cache})

	// One Report per result: the display converter names typedefs
	// statefully, so repeated Report calls on one Result differ.
	base, rep1, rep2 := baseline.Report(), r1.Report(), r2.Report()
	if base != rep1 || rep1 != rep2 {
		t.Error("shape cache changed the displayed report")
	}
	s1, s2 := r1.CacheStats(), r2.CacheStats()
	if s1.ShapeMisses == 0 {
		t.Errorf("first run should miss into the shared cache (hits=%d misses=%d)", s1.ShapeHits, s1.ShapeMisses)
	}
	if s2.ShapeHits == 0 || s2.ShapeMisses != 0 {
		t.Errorf("second run should be all hits (hits=%d misses=%d)", s2.ShapeHits, s2.ShapeMisses)
	}
	sb := baseline.CacheStats()
	if sb.ShapeHits != 0 || sb.ShapeMisses != 0 {
		t.Errorf("NoShapeCache run reports cache activity (%d/%d)", sb.ShapeHits, sb.ShapeMisses)
	}
}

// TestBodyDedupPublicAPI: the public NoBodyDedup knob — output is
// byte-identical with whole-body dedup on and off, the default-on run
// reports its activity in CacheStats, and the knob really disables it.
func TestBodyDedupPublicAPI(t *testing.T) {
	prog := MustParseAsm(`
proc twin_a
    mov eax, [esp+4]
    add eax, 5
    ret
endproc
proc twin_b
    mov eax, [esp+4]
    add eax, 5
    ret
endproc
`)
	on := Infer(prog, nil)
	off := Infer(prog, &Config{NoBodyDedup: true})
	if on.Report() != off.Report() {
		t.Error("body dedup changed the displayed report")
	}
	if st := on.CacheStats(); st.BodyDedupHits == 0 {
		t.Errorf("twin procedures produced no body-dedup hits (%+v)", st)
	}
	if st := off.CacheStats(); st.BodyDedupHits != 0 || st.BodyDedupMisses != 0 {
		t.Errorf("NoBodyDedup run reports dedup activity (%+v)", st)
	}
}
